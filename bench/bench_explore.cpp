// bench_explore: throughput and parallel scaling of the schedule-exploration
// engine, driven end-to-end through the CheckSession API (DESIGN.md §9).
//
// Explores fig5_mp_annotated (message passing, the paper's running example)
// on every simulated back-end under a fixed preemption bound and horizon,
// reporting schedules/second and the pruning ratio, plus how many schedules
// the seeded-bug mode needs before the injected missing-flush fault is
// found. Under --engine-state=replay every schedule is a full program
// re-execution, so schedules/sec tracks the whole sim+runtime+validator
// stack; under the default snapshot engine schedules fork from machine
// snapshots (DESIGN.md §10) and the stateful section below reports the
// speedup that buys at a deep horizon.
// The scaling section re-runs the fig4_exclusive sweep (every registered
// back-end) at --jobs ∈ {1, 2, 4, …} up to --jobs, checking that the totals stay
// bit-identical while the wall clock drops. The DPOR section measures the
// partial-order-reduction ratio (`dpor_reduction`, DESIGN.md §8) over the
// whole annotatable suite — a deterministic property of the schedule tree.
// The apps section measures the apps-layer workload (MFifo + TaskCounter on
// every back-end, reduced search) as `apps_schedules_per_sec`.
//
//   bench_explore [--preemptions=N] [--horizon=H] [--jobs=N]
//                 [--engine-state=replay|snapshot] [--json[=PATH]]
#include <algorithm>
#include <chrono>
#include <thread>

#include "bench/bench_common.h"
#include "explore/check.h"
#include "explore/litmus_driver.h"
#include "fuzz/farm.h"
#include "model/litmus_library.h"
#include "obs/trace.h"
#include "sim/scheduler.h"

using namespace pmc;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  explore::ExploreConfig cfg;
  cfg.preemption_bound =
      static_cast<int>(bench::flag_int(argc, argv, "preemptions", 2));
  cfg.horizon =
      static_cast<uint64_t>(bench::flag_int(argc, argv, "horizon", 20));

  explore::SessionOptions sopts;
  sopts.explore = cfg;
  if (const char* es = bench::flag_str(argc, argv, "engine-state", nullptr)) {
    const auto state = explore::engine_state_from_string(es);
    if (!state) {
      std::fprintf(stderr,
                   "unknown --engine-state '%s' (want replay|snapshot)\n", es);
      return 2;
    }
    sopts.engine_state = *state;
  }

  bench::JsonReport json("explore");
  json.add("preemptions", cfg.preemption_bound);
  json.add("horizon", cfg.horizon);
  json.add("engine_state",
           std::string(explore::to_string(sopts.engine_state)));

  std::printf("schedule exploration throughput (fig5_mp_annotated, "
              "preemptions<=%d, horizon=%llu, engine-state=%s)\n\n",
              cfg.preemption_bound,
              static_cast<unsigned long long>(cfg.horizon),
              explore::to_string(sopts.engine_state));
  const explore::CheckSession session(sopts);
  util::Table table;
  table.add_row({"back-end", "explored", "pruned", "prune", "sched/s"});
  uint64_t total_explored = 0;
  uint64_t total_pruned = 0;
  for (rt::Target t : rt::sim_targets()) {
    const explore::LitmusTarget target(model::litmus::fig5_mp_annotated(), t);
    const auto t0 = std::chrono::steady_clock::now();
    const auto rep = session.explore(target);
    const double secs = seconds_since(t0);
    if (rep.failing != 0) {
      std::fprintf(stderr, "!! %s: %llu model-invalid schedule(s)\n",
                   rt::to_string(t),
                   static_cast<unsigned long long>(rep.failing));
      return 1;
    }
    const double rate = secs > 0 ? static_cast<double>(rep.explored) / secs
                                 : 0.0;
    total_explored += rep.explored;
    total_pruned += rep.pruned;
    table.add_row({rt::to_string(t), bench::fmt_u64(rep.explored),
                   bench::fmt_u64(rep.pruned),
                   bench::pc(static_cast<double>(rep.pruned),
                             static_cast<double>(rep.explored + rep.pruned)),
                   bench::fmt_u64(static_cast<uint64_t>(rate))});
    // Keyed backend_<name>_* so consumers can discover the per-back-end
    // section by prefix no matter how many columns the registry grows.
    json.add("backend_" + std::string(rt::to_string(t)) + "_schedules_per_sec",
             rate);
    json.add("backend_" + std::string(rt::to_string(t)) + "_explored",
             rep.explored);
  }
  std::printf("%s\n", table.render().c_str());
  json.add("total_explored", total_explored);
  json.add("total_pruned", total_pruned);
  json.add("prune_ratio",
           total_explored + total_pruned == 0
               ? 0.0
               : static_cast<double>(total_pruned) /
                     static_cast<double>(total_explored + total_pruned));

  // Parallel scaling: the fig4_exclusive sweep over all back-ends, sharded
  // over 1, 2, 4, … workers. Totals must be bit-identical at every job
  // count (the space is a fixed tree); only the wall clock may change.
  const int max_jobs = static_cast<int>(bench::flag_int(argc, argv, "jobs", 8));
  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::printf("parallel scaling (fig4_exclusive sweep, all back-ends), "
              "%u host cpu(s)\n\n",
              host_cpus);
  if (host_cpus < static_cast<unsigned>(max_jobs)) {
    std::printf("note: only %u hardware thread(s) — the curve measures "
                "overhead, not speedup; run on >= %d cores for scaling\n\n",
                host_cpus, max_jobs);
  }
  util::Table scaling;
  scaling.add_row({"jobs", "explored", "sched/s", "speedup"});
  double base_rate = 0;
  double best_rate = 0;
  uint64_t scaling_explored = 0;
  int measured_jobs = 1;  // the curve doubles, so record what actually ran
  std::vector<uint64_t> last_steals;  // per-worker, from the widest run
  for (int jobs = 1; jobs <= max_jobs; jobs *= 2) {
    measured_jobs = jobs;
    explore::SessionOptions popts = sopts;
    popts.jobs = jobs;
    popts.engine = explore::Engine::kParallel;
    const explore::CheckSession scaled(popts);
    uint64_t explored = 0;
    std::vector<uint64_t> steals(static_cast<size_t>(jobs), 0);
    const auto t0 = std::chrono::steady_clock::now();
    for (rt::Target t : rt::sim_targets()) {
      const explore::LitmusTarget target(model::litmus::fig4_exclusive(), t);
      const auto rep = scaled.explore(target);
      if (rep.failing != 0) {
        std::fprintf(stderr, "!! %s: %llu model-invalid schedule(s)\n",
                     rt::to_string(t),
                     static_cast<unsigned long long>(rep.failing));
        return 1;
      }
      explored += rep.explored;
      for (size_t w = 0;
           w < rep.worker_steals.size() && w < steals.size(); ++w) {
        steals[w] += rep.worker_steals[w];
      }
    }
    last_steals = std::move(steals);
    const double secs = seconds_since(t0);
    if (scaling_explored == 0) {
      scaling_explored = explored;
    } else if (explored != scaling_explored) {
      std::fprintf(stderr,
                   "!! explored totals changed with the job count (%llu vs "
                   "%llu) — determinism bug\n",
                   static_cast<unsigned long long>(explored),
                   static_cast<unsigned long long>(scaling_explored));
      return 1;
    }
    const double rate =
        secs > 0 ? static_cast<double>(explored) / secs : 0.0;
    if (jobs == 1) base_rate = rate;
    if (rate > best_rate) best_rate = rate;
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.2fx",
                  base_rate > 0 ? rate / base_rate : 0.0);
    scaling.add_row({std::to_string(jobs), bench::fmt_u64(explored),
                     bench::fmt_u64(static_cast<uint64_t>(rate)), speedup});
    json.add("jobs_" + std::to_string(jobs) + "_schedules_per_sec", rate);
  }
  std::printf("%s\n", scaling.render().c_str());
  json.add("host_cpus", static_cast<uint64_t>(host_cpus));
  json.add("scaling_jobs", measured_jobs);
  json.add("scaling_explored", scaling_explored);
  json.add("parallel_speedup", base_rate > 0 ? best_rate / base_rate : 0.0);
  // Work-stealing telemetry from the widest run: how evenly the frontier
  // sharded. Wall-clock-ish (scheduling-dependent), recorded not asserted.
  uint64_t steals_total = 0;
  for (size_t w = 0; w < last_steals.size(); ++w) {
    json.add("steals_worker_" + std::to_string(w), last_steals[w]);
    steals_total += last_steals[w];
  }
  json.add("steals_total", steals_total);

  // DPOR: explored-schedule reduction at identical failing sets (DESIGN.md
  // §8). The reduction is a property of the fixed schedule tree, not of the
  // host, so the ratio is deterministic and assertable even on one vCPU.
  std::printf("partial-order reduction (annotatable suite, all back-ends)\n\n");
  util::Table dpor_table;
  dpor_table.add_row({"dpor", "explored", "dpor-pruned", "reduction"});
  uint64_t dpor_explored[2] = {0, 0};
  uint64_t dpor_pruned_total = 0;
  const explore::DporMode modes[2] = {explore::DporMode::kOff,
                                      explore::DporMode::kSleepSet};
  for (int i = 0; i < 2; ++i) {
    explore::SessionOptions dopts = sopts;
    dopts.explore.dpor = modes[i];
    const explore::CheckSession dpor_session(dopts);
    for (rt::Target t : rt::sim_targets()) {
      for (const auto& test : explore::annotatable_tests()) {
        const explore::LitmusTarget target(test, t);
        const auto rep = dpor_session.explore(target);
        if (rep.failing != 0) {
          std::fprintf(stderr, "!! %s/%s dpor=%s: %llu model-invalid "
                       "schedule(s)\n",
                       rt::to_string(t), test.name.c_str(),
                       explore::to_string(modes[i]),
                       static_cast<unsigned long long>(rep.failing));
          return 1;
        }
        if (rep.truncated) {
          // A clipped count would fake a ~1.0x reduction; the ratio is only
          // meaningful over the complete bounded space.
          std::fprintf(stderr, "!! %s/%s dpor=%s: truncated at max_schedules "
                       "— dpor_reduction would be meaningless; lower "
                       "--preemptions/--horizon\n",
                       rt::to_string(t), test.name.c_str(),
                       explore::to_string(modes[i]));
          return 1;
        }
        dpor_explored[i] += rep.explored;
        if (i == 1) dpor_pruned_total += rep.dpor_pruned;
      }
    }
    const double reduction =
        i == 0 || dpor_explored[1] == 0
            ? 1.0
            : static_cast<double>(dpor_explored[0]) /
                  static_cast<double>(dpor_explored[1]);
    char red[32];
    std::snprintf(red, sizeof red, "%.1fx", reduction);
    dpor_table.add_row({explore::to_string(modes[i]),
                        bench::fmt_u64(dpor_explored[i]),
                        bench::fmt_u64(i == 1 ? dpor_pruned_total : 0), red});
  }
  std::printf("%s\n", dpor_table.render().c_str());
  json.add("dpor_off_explored", dpor_explored[0]);
  json.add("dpor_sleepset_explored", dpor_explored[1]);
  json.add("dpor_reduction",
           dpor_explored[1] == 0
               ? 0.0
               : static_cast<double>(dpor_explored[0]) /
                     static_cast<double>(dpor_explored[1]));

  // Stateful exploration: replay vs snapshot engine over the annotatable
  // suite at a deep horizon (snapshots amortize best when the pre-branch
  // prefix being skipped is long — DESIGN.md §10). Both engines walk the
  // identical schedule tree, so equal explored totals double as a cheap
  // soundness check; only the wall clock may differ.
  {
    explore::ExploreConfig scfg = cfg;
    scfg.horizon = std::max<uint64_t>(cfg.horizon, 24);
    // DPOR off: the reduction shrinks the tree to a handful of schedules
    // per target, leaving nothing for snapshots to amortize over — the
    // speedup is a per-schedule-cost property, so measure it on the full
    // bounded tree.
    scfg.dpor = explore::DporMode::kOff;
    std::printf("stateful exploration (annotatable suite, all back-ends, "
                "horizon=%llu, dpor=off)\n\n",
                static_cast<unsigned long long>(scfg.horizon));
    if (!sim::Scheduler::fibers_supported()) {
      std::printf("note: fibers unavailable in this build — the snapshot "
                  "engine falls back to replay, expect ~1.0x\n\n");
    }
    const explore::EngineState states[2] = {explore::EngineState::kReplay,
                                            explore::EngineState::kSnapshot};
    double rates[2] = {0, 0};
    uint64_t totals[2] = {0, 0};
    uint64_t pool_hits = 0;
    uint64_t snapshots_taken = 0;
    // Target construction enumerates the model-level allowed outcomes —
    // engine-independent oracle work that would dilute both rates equally;
    // build the targets once, outside the timed region.
    std::vector<explore::LitmusTarget> suite_targets;
    for (rt::Target t : rt::sim_targets()) {
      for (const auto& test : explore::annotatable_tests()) {
        suite_targets.emplace_back(test, t);
      }
    }
    util::Table stateful;
    stateful.add_row({"engine", "explored", "sched/s", "snapshots", "hits"});
    for (int i = 0; i < 2; ++i) {
      explore::SessionOptions eopts;
      eopts.explore = scfg;
      eopts.engine_state = states[i];
      const explore::CheckSession engine_session(eopts);
      const auto t0 = std::chrono::steady_clock::now();
      for (const explore::LitmusTarget& target : suite_targets) {
        const auto rep = engine_session.explore(target);
        if (rep.failing != 0) {
          std::fprintf(stderr, "!! %s engine=%s: %llu model-invalid "
                       "schedule(s)\n",
                       target.name().c_str(), explore::to_string(states[i]),
                       static_cast<unsigned long long>(rep.failing));
          return 1;
        }
        totals[i] += rep.explored;
        if (i == 1) {
          pool_hits += rep.snapshot_hits;
          snapshots_taken += rep.snapshots_taken;
        }
      }
      const double secs = seconds_since(t0);
      rates[i] = secs > 0 ? static_cast<double>(totals[i]) / secs : 0.0;
      stateful.add_row({explore::to_string(states[i]),
                        bench::fmt_u64(totals[i]),
                        bench::fmt_u64(static_cast<uint64_t>(rates[i])),
                        bench::fmt_u64(i == 1 ? snapshots_taken : 0),
                        bench::fmt_u64(i == 1 ? pool_hits : 0)});
    }
    if (totals[0] != totals[1]) {
      std::fprintf(stderr,
                   "!! engines explored different totals (%llu vs %llu) — "
                   "the snapshot engine diverged from replay\n",
                   static_cast<unsigned long long>(totals[0]),
                   static_cast<unsigned long long>(totals[1]));
      return 1;
    }
    std::printf("%s\n", stateful.render().c_str());
    json.add("stateful_schedules_per_sec", rates[1]);
    json.add("stateful_speedup", rates[0] > 0 ? rates[1] / rates[0] : 0.0);
    json.add("snapshot_pool_hits", pool_hits);
    json.add("snapshots_taken", snapshots_taken);
  }

  // Apps-layer workload (ROADMAP): MFifo + TaskCounter on every back-end
  // through the session, reduced search. App schedules re-execute a whole
  // kernel (locks, polls, payload copies), so this rate is the end-to-end
  // cost of model-checking a real workload, not a litmus microbenchmark.
  {
    explore::SessionOptions aopts;
    aopts.explore.preemption_bound = 1;
    aopts.explore.horizon = 14;
    aopts.explore.dpor = explore::DporMode::kSleepSet;
    aopts.engine_state = sopts.engine_state;
    const explore::CheckSession apps_session(aopts);
    std::printf("apps-layer model checking (mfifo + taskcounter, "
                "dpor=sleepset)\n\n");
    util::Table apps_table;
    apps_table.add_row({"app", "explored", "dpor-pruned", "sched/s"});
    uint64_t apps_explored = 0;
    double apps_secs = 0;
    for (const explore::AppKind kind : explore::all_app_kinds()) {
      uint64_t explored = 0;
      uint64_t dpor_pruned = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (rt::Target t : rt::sim_targets()) {
        const auto target = explore::make_app_target(kind, t);
        const auto rep = apps_session.explore(*target);
        if (rep.failing != 0) {
          std::fprintf(stderr, "!! %s on %s: %llu failing schedule(s)\n",
                       explore::to_string(kind), rt::to_string(t),
                       static_cast<unsigned long long>(rep.failing));
          return 1;
        }
        explored += rep.explored;
        dpor_pruned += rep.dpor_pruned;
      }
      const double secs = seconds_since(t0);
      apps_explored += explored;
      apps_secs += secs;
      const double rate =
          secs > 0 ? static_cast<double>(explored) / secs : 0.0;
      apps_table.add_row({explore::to_string(kind), bench::fmt_u64(explored),
                          bench::fmt_u64(dpor_pruned),
                          bench::fmt_u64(static_cast<uint64_t>(rate))});
      json.add(std::string("apps_") + explore::to_string(kind) + "_explored",
               explored);
    }
    std::printf("%s\n", apps_table.render().c_str());
    json.add("apps_explored", apps_explored);
    json.add("apps_schedules_per_sec",
             apps_secs > 0 ? static_cast<double>(apps_explored) / apps_secs
                           : 0.0);
  }

  // hb-class discovery curve: distinct happens-before classes after
  // 1, 2, 4, ... explored schedules of the fig4_exclusive sweep on SWCC
  // (sequential engine, dpor off: a deterministic saturation curve). A
  // curve that flattens long before the space exhausts is the signal that
  // raising the bounds buys coverage, not behaviors.
  {
    explore::SessionOptions hopts = sopts;
    hopts.jobs = 1;
    hopts.engine = explore::Engine::kSequential;
    hopts.explore.dpor = explore::DporMode::kOff;
    hopts.explore.sample_hb_curve = true;
    const explore::CheckSession hb_session(hopts);
    const explore::LitmusTarget target(model::litmus::fig4_exclusive(),
                                       rt::Target::kSWCC);
    const auto rep = hb_session.explore(target);
    std::printf("hb-class discovery (fig4_exclusive@swcc): %llu classes in "
                "%llu schedules, curve",
                static_cast<unsigned long long>(rep.distinct_traces),
                static_cast<unsigned long long>(rep.explored));
    for (size_t i = 0; i < rep.hb_curve.size(); ++i) {
      std::printf(" %llu", static_cast<unsigned long long>(rep.hb_curve[i]));
      json.add("hb_classes_curve_" + std::to_string(i), rep.hb_curve[i]);
    }
    std::printf("\n\n");
    json.add("hb_classes_final", rep.distinct_traces);
    json.add("hb_classes_schedules", rep.explored);
  }

  // Tracing overhead: a machine with no recorder attached must pay one
  // predictable branch per instrumentation point, and an attached-but-
  // disarmed recorder two. Price it end-to-end: repeated replays of the
  // default schedule through the stateless engine, detached vs disarmed.
  // The target is <2%; this host may be a loaded single vCPU, so the bench
  // records the number, warns past 2%, and only fails on a gross (>10%)
  // regression.
  {
    explore::SessionOptions ropts = sopts;
    ropts.jobs = 1;
    ropts.engine = explore::Engine::kSequential;
    ropts.engine_state = explore::EngineState::kReplay;
    const explore::CheckSession replay_session(ropts);
    const explore::LitmusTarget target(model::litmus::fig5_mp_annotated(),
                                       rt::Target::kSWCC);
    const explore::DecisionString default_schedule;
    obs::TraceRecorder rec;
    rec.disarm();
    const int reps =
        static_cast<int>(bench::flag_int(argc, argv, "overhead-reps", 40));
    double detached = 1e300;
    double disarmed = 1e300;
    for (int pass = 0; pass < 3; ++pass) {  // min-of-3 rejects host noise
      auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < reps; ++i) {
        if (!replay_session.replay(target, default_schedule).ok) return 1;
      }
      detached = std::min(detached, seconds_since(t0));
      t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < reps; ++i) {
        if (!replay_session
                 .replay_traced(target, default_schedule, &rec)
                 .ok) {
          return 1;
        }
      }
      disarmed = std::min(disarmed, seconds_since(t0));
    }
    const double overhead_pct =
        detached > 0 ? (disarmed - detached) / detached * 100.0 : 0.0;
    std::printf("trace overhead (disarmed recorder vs detached, %d replays "
                "x3): %.2f%%\n\n",
                reps, overhead_pct);
    json.add("trace_overhead_pct", overhead_pct);
    if (overhead_pct > 10.0) {
      std::fprintf(stderr,
                   "!! disarmed-recorder overhead %.1f%% — the "
                   "instrumentation guard regressed\n",
                   overhead_pct);
      return 1;
    }
    if (overhead_pct > 2.0) {
      std::printf("note: overhead above the 2%% target — expected only on "
                  "loaded/1-vCPU hosts\n\n");
    }
  }

  // Coverage-guided fuzzing farm (DESIGN.md §14): a fixed exec budget of
  // guided mutation over every back-end, in memory, at jobs=1 — so the
  // coverage-growth keys are a deterministic function of the budget and
  // only the classes-per-second rate tracks the host. Written as a second
  // report (BENCH_fuzz.json) because the farm is its own subsystem with its
  // own trajectory to follow across PRs.
  {
    fuzz::FarmOptions fopts;
    fopts.max_execs = static_cast<uint64_t>(
        bench::flag_int(argc, argv, "fuzz-execs", 96));
    fopts.jobs = 1;
    fopts.seed = 1;
    const auto t0 = std::chrono::steady_clock::now();
    const fuzz::FarmResult fr = fuzz::Farm(fopts).run();
    const double secs = seconds_since(t0);
    if (!fr.failures.empty()) {
      std::fprintf(stderr, "!! fuzz farm found %zu oracle violation(s); "
                   "first: %s\n",
                   fr.failures.size(), fr.failures.front().message.c_str());
      return 1;
    }
    const double classes_per_sec =
        secs > 0 ? static_cast<double>(fr.total_classes) / secs : 0.0;
    std::printf("fuzz farm (guided, %llu execs, jobs=1): %llu hb-classes "
                "(%.0f/s), corpus %llu, growth curve %zu point(s)\n\n",
                static_cast<unsigned long long>(fr.execs),
                static_cast<unsigned long long>(fr.total_classes),
                classes_per_sec, static_cast<unsigned long long>(
                    fr.corpus_size),
                fr.growth.size());
    bench::JsonReport fuzz_json("fuzz");
    fuzz_json.add("fuzz_execs", fr.execs);
    fuzz_json.add("fuzz_schedules", fr.schedules);
    fuzz_json.add("fuzz_dpor_pruned", fr.dpor_pruned);
    fuzz_json.add("fuzz_classes_per_sec", classes_per_sec);
    fuzz_json.add("fuzz_corpus_entries", fr.corpus_size);
    fuzz_json.add("fuzz_corpus_growth_samples",
                  static_cast<uint64_t>(fr.growth.size()));
    fuzz_json.add("fuzz_corpus_growth_final_execs",
                  fr.growth.empty() ? uint64_t{0} : fr.growth.back().first);
    fuzz_json.add("fuzz_corpus_growth_final_classes",
                  fr.growth.empty() ? uint64_t{0} : fr.growth.back().second);
    const bool want_json =
        bench::flag_set(argc, argv, "json") ||
        bench::flag_str(argc, argv, "json", nullptr) != nullptr;
    if (want_json && !fuzz_json.write_file(fuzz_json.default_path())) {
      return 1;
    }
  }

  // Seeded-bug mode: schedules until the injected missing flush is exposed.
  uint64_t worst_to_find = 0;
  for (rt::Target t : rt::sim_targets()) {
    if (!explore::has_seeded_fault(t)) continue;
    const explore::LitmusTarget target = explore::seeded_bug_check(t);
    const auto rep = session.explore(target);
    if (rep.failing == 0) {
      std::fprintf(stderr, "!! %s: seeded fault not found\n",
                   rt::to_string(t));
      return 1;
    }
    std::printf("seed-bug %-5s found in %llu schedules, first failing \"%s\""
                " (%llu of %llu explored failing)\n",
                rt::to_string(t),
                static_cast<unsigned long long>(
                    rep.schedules_to_first_failure),
                explore::to_string(rep.first_failing).c_str(),
                static_cast<unsigned long long>(rep.failing),
                static_cast<unsigned long long>(rep.explored));
    worst_to_find = std::max(worst_to_find, rep.schedules_to_first_failure);
  }
  json.add("seedbug_worst_schedules", worst_to_find);
  return json.maybe_write(argc, argv) ? 0 : 1;
}
