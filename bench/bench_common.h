// Shared helpers for the figure-regeneration harnesses.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/app.h"
#include "util/table.h"

namespace pmc::bench {

/// Minimal flag parsing: --name=value.
inline int64_t flag_int(int argc, char** argv, const char* name,
                        int64_t def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return def;
}

inline bool flag_set(int argc, char** argv, const char* name) {
  const std::string f = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (f == argv[i]) return true;
  }
  return false;
}

/// Percentage string with one decimal.
inline std::string pc(double num, double den) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%5.1f%%", den == 0 ? 0.0 : 100.0 * num / den);
  return buf;
}

inline std::string fmt_u64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

/// The Fig. 8 time decomposition of one run, aggregated over cores.
struct Breakdown {
  uint64_t total = 0;  // Σ cycles over cores (busy + stalls + idle)
  uint64_t busy = 0;
  uint64_t ifetch = 0;
  uint64_t priv_read = 0;
  uint64_t shared_read = 0;
  uint64_t sync = 0;  // lock/barrier word stalls + backoff idle
  uint64_t write = 0;
  uint64_t flush = 0;

  static Breakdown from(const pmc::sim::CoreStats& s) {
    Breakdown b;
    b.busy = s.busy;
    b.ifetch = s.stall_ifetch;
    b.priv_read = s.stall_private_read;
    b.shared_read = s.stall_shared_read;
    b.sync = s.stall_sync_read + s.idle;
    b.write = s.stall_write;
    b.flush = s.stall_flush;
    b.total = b.busy + b.ifetch + b.priv_read + b.shared_read + b.sync +
              b.write + b.flush;
    return b;
  }
};

}  // namespace pmc::bench
