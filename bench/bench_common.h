// Shared helpers for the figure-regeneration harnesses.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "apps/app.h"
#include "util/table.h"

namespace pmc::bench {

/// Minimal flag parsing: --name=value.
inline int64_t flag_int(int argc, char** argv, const char* name,
                        int64_t def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atoll(argv[i] + prefix.size());
    }
  }
  return def;
}

/// String-valued --name=value flag; def (may be nullptr) when absent.
inline const char* flag_str(int argc, char** argv, const char* name,
                            const char* def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return def;
}

/// Splits a comma-separated flag value ("a.cfg,b.cfg") into items, skipping
/// empty segments.
inline std::vector<std::string> split_csv(const char* s) {
  std::vector<std::string> out;
  if (s == nullptr) return out;
  const std::string str = s;
  size_t start = 0;
  while (start < str.size()) {
    size_t comma = str.find(',', start);
    if (comma == std::string::npos) comma = str.size();
    if (comma > start) out.push_back(str.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

inline bool flag_set(int argc, char** argv, const char* name) {
  const std::string f = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (f == argv[i]) return true;
  }
  return false;
}

/// Percentage string with one decimal.
inline std::string pc(double num, double den) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%5.1f%%", den == 0 ? 0.0 : 100.0 * num / den);
  return buf;
}

inline std::string fmt_u64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

/// Machine-readable result sink for the perf trajectory (bench/README.md).
///
/// Every harness accumulates its headline numbers here and calls
/// maybe_write() at the end of main. With `--json` (or `--json=PATH`) on the
/// command line the metrics are written as one flat JSON object to
/// BENCH_<name>.json in the working directory (or PATH); without the flag
/// nothing is emitted, so default output is unchanged. Keys are stable
/// across PRs — CI and future sessions diff these files run over run.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    metrics_.emplace_back(key, buf);
  }
  void add(const std::string& key, uint64_t value) {
    metrics_.emplace_back(key, fmt_u64(value));
  }
  void add(const std::string& key, int value) {
    add(key, static_cast<uint64_t>(value < 0 ? 0 : value));
  }
  /// String-valued metric; quoted and escaped on output.
  void add(const std::string& key, const std::string& value) {
    metrics_.emplace_back(key, quoted(value));
  }

  /// The report's default file name ("BENCH_<name>.json").
  std::string default_path() const { return "BENCH_" + name_ + ".json"; }

  /// Writes the report to `path` unconditionally. Returns false on an I/O
  /// error (callers treat that as a harness failure). Every string is
  /// escaped and every non-numeric value literal is quoted on the way out,
  /// so the file is valid JSON by construction, whatever the keys contain.
  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "!! cannot open %s for writing\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": %s", quoted(name_).c_str());
    for (const auto& [key, value] : metrics_) {
      std::fprintf(f, ",\n  %s: %s", quoted(key).c_str(), value.c_str());
    }
    std::fprintf(f, "\n}\n");
    const bool ok = std::fclose(f) == 0;
    if (ok) std::printf("wrote %s\n", path.c_str());
    return ok;
  }

  /// Writes BENCH_<name>.json if --json[=PATH] was passed; no flag, no file.
  bool maybe_write(int argc, char** argv) const {
    std::string path;
    const std::string prefix = "--json=";
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        path = default_path();
      } else if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
        path = argv[i] + prefix.size();
        if (path.empty()) path = default_path();
      }
    }
    if (path.empty()) return true;
    return write_file(path);
  }

 private:
  /// JSON string literal with the mandatory escapes (quote, backslash,
  /// control characters). fprintf'ing keys raw emitted invalid JSON the
  /// moment a key contained '"' or '\'.
  static std::string quoted(const std::string& s) {
    std::string out = "\"";
    for (const char ch : s) {
      switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(ch)));
            out += buf;
          } else {
            out += ch;
          }
      }
    }
    out += '"';
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> metrics_;  // key -> literal
};

/// The Fig. 8 time decomposition of one run, aggregated over cores.
struct Breakdown {
  uint64_t total = 0;  // Σ cycles over cores (busy + stalls + idle)
  uint64_t busy = 0;
  uint64_t ifetch = 0;
  uint64_t priv_read = 0;
  uint64_t shared_read = 0;
  uint64_t sync = 0;  // lock/barrier word stalls + backoff idle
  uint64_t write = 0;
  uint64_t flush = 0;

  static Breakdown from(const pmc::sim::CoreStats& s) {
    Breakdown b;
    b.busy = s.busy;
    b.ifetch = s.stall_ifetch;
    b.priv_read = s.stall_private_read;
    b.shared_read = s.stall_shared_read;
    b.sync = s.stall_sync_read + s.idle;
    b.write = s.stall_write;
    b.flush = s.stall_flush;
    b.total = b.busy + b.ifetch + b.priv_read + b.shared_read + b.sync +
              b.write + b.flush;
    return b;
  }
};

}  // namespace pmc::bench
