// Design-choice ablations called out in DESIGN.md:
//  * cache line size under SWCC (object granularity vs line granularity —
//    flush cost against fill efficiency);
//  * DSM handoff traffic vs object size (the lazy-release transfer).
//
// Flags: --cores=N (default 8).
#include <cstdio>

#include "apps/volrend_like.h"
#include "bench/bench_common.h"
#include "util/table.h"

namespace {

using namespace pmc;
using namespace pmc::bench;
using namespace pmc::apps;

uint64_t volrend_with_line(int cores, uint32_t line_bytes) {
  VolrendConfig c;
  c.volume = 16;
  c.image = 24;
  VolrendLike app(c);
  ProgramOptions o;
  o.target = rt::Target::kSWCC;
  o.cores = cores;
  o.machine = sim::MachineConfig::ml605(cores);
  o.machine.dcache.line_bytes = line_bytes;
  // Keep fill cost per byte constant so the sweep isolates the line policy.
  o.machine.timing.sdram_line_fill = 22 + line_bytes / 2;
  o.machine.max_cycles = UINT64_C(10'000'000'000);
  o.validate = false;
  o.lock_capacity = 512;
  return run_app(app, o).makespan;
}

uint64_t dsm_handoff_cycles(int cores, uint32_t obj_bytes,
                            bool eager = false) {
  rt::ProgramOptions o;
  o.policy.dsm_eager_release = eager;
  o.target = rt::Target::kDSM;
  o.cores = cores;
  o.machine = sim::MachineConfig::ml605(cores);
  o.machine.lm_bytes = 128 * 1024;
  o.machine.max_cycles = UINT64_C(10'000'000'000);
  o.validate = false;
  o.lock_capacity = 64;
  rt::Program prog(o);
  const rt::ObjId x =
      prog.create_object(obj_bytes, rt::Placement::kReplicated, "x");
  const int rounds = 16;
  prog.run([&](rt::Env& env) {
    for (int i = 0; i < rounds; ++i) {
      env.entry_x(x);  // ownership transfer pulls the whole object
      env.st<uint32_t>(x, 0, static_cast<uint32_t>(i));
      env.exit_x(x);
      env.barrier();   // force round-robin-ish interleaving
    }
  });
  uint64_t makespan = 0;
  for (int c = 0; c < cores; ++c) {
    makespan = std::max(makespan, prog.machine()->stats(c).cycles_total);
  }
  return makespan;
}

}  // namespace

int main(int argc, char** argv) {
  const int cores = static_cast<int>(flag_int(argc, argv, "cores", 8));
  std::printf("== parameter ablations ==\n\n");

  JsonReport json("ablation_params");
  json.add("cores", cores);

  util::Table t1;
  t1.add_row({"line bytes", "VOLREND-like SWCC makespan"});
  for (uint32_t line : {16u, 32u, 64u}) {
    const uint64_t makespan = volrend_with_line(cores, line);
    t1.add_row({fmt_u64(line), fmt_u64(makespan)});
    json.add("swcc_line" + fmt_u64(line) + "_makespan", makespan);
  }
  std::printf("cache line size under SWCC:\n%s\n", t1.render().c_str());

  util::Table t2;
  t2.add_row({"object bytes", "lazy release", "eager release"});
  for (uint32_t bytes : {16u, 64u, 256u, 1024u}) {
    const uint64_t lazy = dsm_handoff_cycles(2, bytes, false);
    const uint64_t eager = dsm_handoff_cycles(2, bytes, true);
    t2.add_row({fmt_u64(bytes), fmt_u64(lazy), fmt_u64(eager)});
    json.add("dsm_obj" + fmt_u64(bytes) + "_lazy_makespan", lazy);
    json.add("dsm_obj" + fmt_u64(bytes) + "_eager_makespan", eager);
  }
  std::printf("DSM ping-pong makespan vs object size (2 cores), lazy vs "
              "eager release (Section V-A):\n%s\n",
              t2.render().c_str());
  util::Table t3;
  t3.add_row({"cores", "lazy release", "eager release"});
  for (int n : {2, 4, 8}) {
    t3.add_row({fmt_u64(static_cast<uint64_t>(n)),
                fmt_u64(dsm_handoff_cycles(n, 256, false)),
                fmt_u64(dsm_handoff_cycles(n, 256, true))});
  }
  std::printf("same, 256 B object, more cores (eager broadcasts to every "
              "tile):\n%s\n", t3.render().c_str());
  std::printf("expected shape: larger lines help dense read-only data until "
              "flush cost dominates;\nDSM handoff grows linearly with the "
              "transferred object; eager release pays a\nbroadcast per exit "
              "and scales with the tile count, lazy pays one targeted "
              "transfer per acquire.\n");
  if (!json.maybe_write(argc, argv)) return 1;
  return 0;
}
