// Microbenchmarks of the SoC substrate (google-benchmark): scheduler handoff
// cost (the price of deterministic interleaving), memory module operations,
// cache accesses, NoC delivery.
#include <benchmark/benchmark.h>

#include <cstring>

#include "sim/cache.h"
#include "sim/machine.h"
#include "sim/noc.h"
#include "sim/scheduler.h"

namespace {

using namespace pmc::sim;

void BM_SchedulerHandoff(benchmark::State& state) {
  const int cores = static_cast<int>(state.range(0));
  const int steps = 2000;
  for (auto _ : state) {
    Scheduler s(cores);
    s.run([&](int core) {
      // Equal steps force a handoff on every advance.
      for (int i = 0; i < steps; ++i) s.advance(core, 1);
    });
  }
  state.SetItemsProcessed(state.iterations() * steps * cores);
}
BENCHMARK(BM_SchedulerHandoff)->Arg(2)->Arg(8)->Arg(32);

void BM_SchedulerNoContention(benchmark::State& state) {
  // One active core: advances never yield.
  const int steps = 20000;
  for (auto _ : state) {
    Scheduler s(1);
    s.run([&](int core) {
      for (int i = 0; i < steps; ++i) s.advance(core, 3);
    });
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_SchedulerNoContention);

void BM_MemModulePostAndRead(benchmark::State& state) {
  MemModule m("m", 0, 4096);
  uint32_t v = 7;
  uint64_t t = 1;
  for (auto _ : state) {
    m.post_write(t + 5, static_cast<Addr>((t * 16) % 4096 & ~3u), &v, 4);
    uint32_t out;
    m.read(t + 6, 0, &out, 4);
    benchmark::DoNotOptimize(out);
    ++t;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemModulePostAndRead);

void BM_CacheHitPath(benchmark::State& state) {
  Cache c(CacheConfig{});
  Cache::Victim victim;
  std::memset(c.install(0x1000, &victim), 0, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.lookup(0x1000));
  }
}
BENCHMARK(BM_CacheHitPath);

void BM_CacheMissInstall(benchmark::State& state) {
  Cache c(CacheConfig{});
  Addr a = 0;
  for (auto _ : state) {
    Cache::Victim victim;
    benchmark::DoNotOptimize(c.install(a, &victim));
    a += 32;
  }
}
BENCHMARK(BM_CacheMissInstall);

void BM_NocDeliver(benchmark::State& state) {
  TimingConfig t;
  Noc n(32, 8, t);
  MemModule dst("d", 0, 4096);
  uint64_t now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(n.deliver(now, 0, 17, dst, 32));
    now += 4;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NocDeliver);

void BM_MachineUncachedRead(benchmark::State& state) {
  // End-to-end cost of one simulated uncached access on a 1-core machine.
  MachineConfig cfg = MachineConfig::ml605(1);
  cfg.sdram_bytes = 64 * 1024;
  cfg.max_cycles = UINT64_C(1) << 60;
  cfg.cache_shared = false;
  Machine m(cfg);
  const int64_t iters = static_cast<int64_t>(state.max_iterations);
  bool done = false;
  for (auto _ : state) {
    if (!done) {
      // Run the whole batch inside one Machine::run to amortize thread setup.
      state.PauseTiming();
      state.ResumeTiming();
      m.run([&](Core& c) {
        for (int64_t i = 0; i < iters; ++i) {
          benchmark::DoNotOptimize(
              c.load_u32(kSdramBase, MemClass::kSharedData));
        }
      });
      done = true;
    }
  }
  state.SetItemsProcessed(iters);
}
BENCHMARK(BM_MachineUncachedRead)->Iterations(100000);

}  // namespace

BENCHMARK_MAIN();
