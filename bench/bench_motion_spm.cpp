// Case study §VI-C / Fig. 10: motion estimation with scratch-pad memories.
//
// The paper: "experiments show a significant performance increase when this
// application is using SPMs, compared to the software cache coherency
// setup". The harness quantifies that on the same machine: SPM vs SWCC vs
// no-CC makespans over a sweep of block/search sizes (reuse grows with the
// search area, so the SPM advantage should widen).
//
// Flags: --cores=N (default 8).
#include <cstdio>

#include "apps/motion_est.h"
#include "bench/bench_common.h"
#include "util/table.h"

namespace {

using namespace pmc;
using namespace pmc::bench;
using namespace pmc::apps;

uint64_t run_motion(rt::Target target, int cores, const MotionConfig& cfg,
                    uint64_t* checksum) {
  MotionEst app(cfg);
  ProgramOptions o;
  o.target = target;
  o.cores = cores;
  o.machine = sim::MachineConfig::ml605(cores);
  o.machine.lm_bytes = 128 * 1024;
  o.machine.max_cycles = UINT64_C(40'000'000'000);
  o.validate = false;
  o.lock_capacity = 512;
  const auto r = run_app(app, o);
  *checksum = r.checksum;
  return r.makespan;
}

}  // namespace

int main(int argc, char** argv) {
  const int cores = static_cast<int>(flag_int(argc, argv, "cores", 8));
  std::printf("== Fig. 10 case study: motion estimation on SPM (%d cores) ==\n\n",
              cores);

  JsonReport json("motion_spm");
  json.add("cores", cores);

  util::Table t;
  t.add_row({"block", "search", "SPM cycles", "SWCC cycles", "no-CC cycles",
             "SPM vs SWCC", "SWCC vs no-CC"});
  for (int variant = 0; variant < 3; ++variant) {
    MotionConfig cfg;
    cfg.blocks_x = 4;
    cfg.blocks_y = 4;
    cfg.block = variant == 0 ? 8 : (variant == 1 ? 8 : 12);
    cfg.search = variant == 0 ? 4 : (variant == 1 ? 8 : 8);
    uint64_t cks_spm = 0, cks_swcc = 0, cks_nocc = 0;
    const uint64_t spm = run_motion(rt::Target::kSPM, cores, cfg, &cks_spm);
    const uint64_t swcc = run_motion(rt::Target::kSWCC, cores, cfg, &cks_swcc);
    const uint64_t nocc = run_motion(rt::Target::kNoCC, cores, cfg, &cks_nocc);
    if (cks_spm != cks_swcc || cks_spm != cks_nocc) {
      std::printf("!! checksum mismatch across back-ends\n");
      return 1;
    }
    char a[32], b[32];
    std::snprintf(a, sizeof a, "%.2fx",
                  static_cast<double>(swcc) / static_cast<double>(spm));
    std::snprintf(b, sizeof b, "%.2fx",
                  static_cast<double>(nocc) / static_cast<double>(swcc));
    t.add_row({fmt_u64(static_cast<uint64_t>(cfg.block)),
               "±" + fmt_u64(static_cast<uint64_t>(cfg.search)),
               fmt_u64(spm), fmt_u64(swcc), fmt_u64(nocc), a, b});
    const std::string key = "b" + fmt_u64(static_cast<uint64_t>(cfg.block)) +
                            "s" + fmt_u64(static_cast<uint64_t>(cfg.search));
    json.add(key + "_spm_cycles", spm);
    json.add(key + "_swcc_cycles", swcc);
    json.add(key + "_nocc_cycles", nocc);
    json.add(key + "_spm_speedup_vs_swcc",
             static_cast<double>(swcc) / static_cast<double>(spm));
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("expected shape: SPM < SWCC < no-CC, with the SPM advantage "
              "growing with the search area\n(more reads per staged byte).\n");
  if (!json.maybe_write(argc, argv)) return 1;
  return 0;
}
