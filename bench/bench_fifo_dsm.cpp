// Case study §VI-B / Fig. 9: the multiple-reader multiple-writer FIFO on the
// software-managed distributed shared memory architecture.
//
// The paper reports no absolute numbers for this case study; the claims the
// harness checks and quantifies are (1) the FIFO "behaves also correctly on
// all of the other architectures", and (2) on DSM "the read and write
// pointers are only polled from local memory, which is fast and does not
// influence the execution of other processors". The throughput series makes
// the local-polling advantage visible against SWCC/no-CC, and a payload
// sweep shows where the crossover lies.
//
// Flags: --items=N (default 96), --readers=N (default 2).
#include <cstdio>
#include <vector>

#include "apps/mfifo.h"
#include "bench/bench_common.h"
#include "util/table.h"

namespace {

using namespace pmc;
using namespace pmc::bench;
using namespace pmc::apps;

struct FifoRun {
  uint64_t makespan = 0;
  uint64_t cycles_per_item = 0;
  uint64_t sdram_sync_stalls = 0;  // reader-side SDRAM traffic
  uint64_t reader_sdram_reads = 0;
};

FifoRun run_fifo(rt::Target target, int readers, int writers, uint32_t items,
                 uint32_t payload_bytes, uint32_t depth) {
  rt::ProgramOptions o;
  o.target = target;
  o.cores = readers + writers;
  o.machine = sim::MachineConfig::ml605(o.cores);
  o.machine.lm_bytes = 256 * 1024;
  o.machine.max_cycles = UINT64_C(20'000'000'000);
  o.validate = false;
  o.lock_capacity = 256;
  rt::Program prog(o);
  MFifo fifo(prog, payload_bytes, depth, readers);
  std::vector<uint8_t> payload(payload_bytes, 0xa5);
  prog.run([&](rt::Env& env) {
    if (env.id() < writers) {
      const uint32_t mine = items / static_cast<uint32_t>(writers);
      for (uint32_t i = 0; i < mine; ++i) {
        fifo.push(env, payload.data());
        env.compute(40);  // produce the next element
      }
    } else {
      const int me = env.id() - writers;
      std::vector<uint8_t> sink(payload_bytes);
      const uint32_t total =
          items / static_cast<uint32_t>(writers) * static_cast<uint32_t>(writers);
      for (uint32_t i = 0; i < total; ++i) {
        fifo.pop(env, me, sink.data());
        env.compute(40);  // consume
      }
    }
  });
  FifoRun r;
  for (int c = 0; c < o.cores; ++c) {
    r.makespan = std::max(r.makespan, prog.machine()->stats(c).cycles_total);
  }
  r.cycles_per_item = r.makespan / items;
  for (int c = writers; c < o.cores; ++c) {
    // Data-path SDRAM stalls only: lock arbitration (atomic unit) is
    // reported by the lock ablation bench instead.
    r.sdram_sync_stalls += prog.machine()->stats(c).stall_shared_read;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const uint32_t items =
      static_cast<uint32_t>(flag_int(argc, argv, "items", 96));
  const int readers = static_cast<int>(flag_int(argc, argv, "readers", 2));

  std::printf("== Fig. 9 case study: multi-reader/multi-writer FIFO ==\n\n");

  JsonReport json("fifo_dsm");
  json.add("items", static_cast<uint64_t>(items));
  json.add("readers", readers);

  util::Table t1;
  t1.add_row({"back-end", "cycles/item", "reader SDRAM data-stall cycles"});
  for (rt::Target target :
       {rt::Target::kDSM, rt::Target::kSWCC, rt::Target::kNoCC}) {
    const FifoRun r = run_fifo(target, readers, /*writers=*/2, items,
                               /*payload=*/32, /*depth=*/8);
    t1.add_row({rt::to_string(target), fmt_u64(r.cycles_per_item),
                fmt_u64(r.sdram_sync_stalls)});
    const std::string slug = rt::to_string(target);
    json.add(slug + "_cycles_per_item", r.cycles_per_item);
    json.add(slug + "_reader_sdram_stalls", r.sdram_sync_stalls);
  }
  std::printf("%u items, 2 writers, %d readers, 32 B payload, depth 8:\n%s\n",
              items, readers, t1.render().c_str());

  util::Table t2;
  t2.add_row({"payload", "DSM cyc/item", "SWCC cyc/item", "DSM/SWCC"});
  for (uint32_t payload : {4u, 16u, 64u, 256u}) {
    const FifoRun dsm = run_fifo(rt::Target::kDSM, readers, 2, items, payload, 8);
    const FifoRun swcc =
        run_fifo(rt::Target::kSWCC, readers, 2, items, payload, 8);
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.2f",
                  static_cast<double>(dsm.cycles_per_item) /
                      static_cast<double>(swcc.cycles_per_item));
    t2.add_row({fmt_u64(payload) + " B", fmt_u64(dsm.cycles_per_item),
                fmt_u64(swcc.cycles_per_item), ratio});
  }
  std::printf("payload sweep (smaller is better):\n%s\n", t2.render().c_str());

  util::Table t3;
  t3.add_row({"readers", "DSM cyc/item", "SWCC cyc/item"});
  for (int r : {1, 2, 4}) {
    const FifoRun dsm = run_fifo(rt::Target::kDSM, r, 2, items, 32, 8);
    const FifoRun swcc = run_fifo(rt::Target::kSWCC, r, 2, items, 32, 8);
    t3.add_row({fmt_u64(static_cast<uint64_t>(r)),
                fmt_u64(dsm.cycles_per_item), fmt_u64(swcc.cycles_per_item)});
  }
  std::printf("reader sweep (broadcast FIFO):\n%s\n", t3.render().c_str());
  std::printf("expected shape: DSM readers poll local memory (near-zero "
              "reader SDRAM stalls);\nno-CC pays uncached SDRAM for every "
              "poll and copy.\n");
  if (!json.maybe_write(argc, argv)) return 1;
  return 0;
}
