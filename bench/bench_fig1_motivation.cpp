// Regenerates paper Fig. 1: "A Sequentially Consistent correct program,
// which breaks on an architecture with two memories".
//
// The flag travels over the fast path (NoC write into the receiver's local
// memory) while the payload takes the slow one (posted SDRAM write); polling
// the flag therefore overtakes the data and the receiver reads stale X —
// unless the program is annotated, in which case the entry_x(X) pulls the
// released version and the read is always 42.
//
// Flags: --delay-sweep prints stale/fresh over a sweep of extra delays.
#include <cstdio>

#include "bench/bench_common.h"
#include "runtime/program.h"
#include "sim/machine.h"

namespace {

using namespace pmc;
using namespace pmc::bench;

/// The raw (unannotated) program of Fig. 1 on the two-memory machine.
/// Returns the value process 2 printed.
uint32_t run_raw(uint32_t reader_extra_delay) {
  sim::MachineConfig cfg = sim::MachineConfig::fig1_twomem();
  cfg.max_cycles = 10'000'000;
  sim::Machine m(cfg);
  const sim::Addr x = sim::kSdramBase;  // "mem X", latency 10
  uint32_t printed = 0;
  m.run([&](sim::Core& c) {
    const sim::Addr flag = m.lm_base(1);  // "mem flag", latency 1
    if (c.id() == 0) {
      c.store_u32(x, 42, sim::MemClass::kSharedData);  // 1: X = 42
      const uint32_t one = 1;
      c.remote_write(1, flag, &one, 4);                // 2: flag = 1
    } else {
      // 3-4: while(flag != 1) sleep();
      c.spin_until(
          [&] { return c.load_u32(flag, sim::MemClass::kLocal) == 1; });
      if (reader_extra_delay > 0) c.idle(reader_extra_delay);
      printed = c.load_u32(x, sim::MemClass::kSharedData);  // 5: print(X)
    }
  });
  return printed;
}

/// The annotated (Fig. 6) version on the same machine, via the PMC runtime.
uint32_t run_annotated() {
  rt::ProgramOptions o;
  o.target = rt::Target::kNoCC;
  o.cores = 2;
  o.machine = sim::MachineConfig::fig1_twomem();
  o.machine.lm_bytes = 64 * 1024;
  o.machine.max_cycles = 10'000'000;
  o.lock_capacity = 8;
  rt::Program prog(o);
  const rt::ObjId x = prog.create_typed<uint32_t>(0, rt::Placement::kSdram, "X");
  const rt::ObjId f = prog.create_typed<uint32_t>(0, rt::Placement::kSdram, "f");
  prog.run([&](rt::Env& env) {
    if (env.id() == 0) {
      env.entry_x(x);
      env.st<uint32_t>(x, 0, 42);
      env.fence();
      env.exit_x(x);
      env.entry_x(f);
      env.st<uint32_t>(f, 0, 1);
      env.flush(f);
      env.exit_x(f);
    } else {
      uint32_t poll = 0;
      do {
        env.entry_ro(f);
        poll = env.ld<uint32_t>(f);
        env.exit_ro(f);
      } while (poll != 1);
      env.fence();
      env.entry_x(x);
      // print(X) — with the acquire, only 42 is possible.
      env.exit_x(x);
    }
  });
  prog.require_valid();
  return prog.result<uint32_t>(x);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Fig. 1: the motivating example on a two-memory machine ==\n\n");
  const uint32_t raw = run_raw(0);
  std::printf("unannotated program: process 2 printed X = %u  %s\n", raw,
              raw == 42 ? "(fresh)" : "(STALE — the bug of Fig. 1)");
  if (flag_set(argc, argv, "delay-sweep")) {
    std::printf("\nextra reader delay -> printed value (write latency race):\n");
    for (uint32_t d = 0; d <= 64; d += 8) {
      std::printf("  +%2u cycles: X = %u\n", d, run_raw(d));
    }
  }
  const uint32_t fixed = run_annotated();
  std::printf("annotated (Fig. 6) program: process 2 read X = %u\n", fixed);
  const bool reproduced = raw != 42 && fixed == 42;
  std::printf("\nresult: %s\n",
              reproduced
                  ? "reproduced — the raw program breaks, PMC annotations fix it"
                  : "UNEXPECTED (check timing configuration)");
  JsonReport json("fig1_motivation");
  json.add("raw_printed", static_cast<uint64_t>(raw));
  json.add("annotated_printed", static_cast<uint64_t>(fixed));
  json.add("reproduced", static_cast<uint64_t>(reproduced ? 1 : 0));
  if (!json.maybe_write(argc, argv)) return 1;
  return reproduced ? 0 : 1;
}
