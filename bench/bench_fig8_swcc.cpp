// Regenerates paper Fig. 8: "Measured execution time and processor
// utilization of non-cached and software cache coherency".
//
// Three SPLASH-2-like kernels run on the 32-core machine twice: once with
// shared data uncached ("no CC") and once with the transparent software
// cache coherency protocol ("SWCC"). For each run the harness prints the
// stacked time decomposition normalized to the app's no-CC run, the core
// utilization, and the flush-instruction overhead — the same rows the
// paper reports (utilization 38%→70% for RADIOSITY, ≈22% mean improvement,
// flush overhead ≤0.66%).
//
// Flags: --cores=N (default 32), --scale=N per-mille workload scale
// (default 1000), --validate (adds the Def. 12 trace check; touches timing).
// --config=a.cfg,b.cfg appends a scaled sweep: the RADIOSITY-like kernel on
// each described machine (MachineConfig::from_file) under no-CC and SWCC,
// with per-core-count keys and the NoC/port contention metrics those
// configs enable; --fibers runs each machine's cores as fibers on one host
// thread (what makes the 256-core config tractable).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/radiosity_like.h"
#include "apps/raytrace_like.h"
#include "apps/volrend_like.h"
#include "bench/bench_common.h"
#include "util/check.h"
#include "util/table.h"

namespace {

using namespace pmc;
using namespace pmc::bench;
using namespace pmc::apps;

ProgramOptions base_opts(Target t, int cores, bool validate, bool fibers) {
  ProgramOptions o;
  o.target = t;
  o.cores = cores;
  o.machine = sim::MachineConfig::ml605(cores);
  o.machine.sdram_bytes = 8 * 1024 * 1024;
  o.machine.max_cycles = UINT64_C(40'000'000'000);
  o.validate = validate;
  o.lock_capacity = 4096;
  o.fiber_execution = fibers;
  return o;
}

ProgramOptions config_opts(Target t, const sim::MachineConfig& mc,
                           bool fibers) {
  ProgramOptions o;
  o.target = t;
  o.cores = mc.num_cores;
  o.machine = mc;
  o.validate = false;  // the Def. 12 trace dominates run time at 256 cores
  o.lock_capacity = 4096;
  o.fiber_execution = fibers;
  return o;
}

std::unique_ptr<App> make_app(int which, int64_t scale) {
  switch (which) {
    case 0: {
      RadiosityConfig c;
      c.patches = static_cast<int>(768 * scale / 1000);
      c.neighbors = 8;
      c.iterations = 3;
      return std::make_unique<RadiosityLike>(c);
    }
    case 1: {
      RaytraceConfig c;
      c.width = static_cast<int>(64 * scale / 1000);
      c.height = static_cast<int>(64 * scale / 1000);
      c.spheres = 28;
      return std::make_unique<RaytraceLike>(c);
    }
    default: {
      VolrendConfig c;
      c.volume = static_cast<int>(24 * scale / 1000);
      c.image = static_cast<int>(64 * scale / 1000);
      return std::make_unique<VolrendLike>(c);
    }
  }
}

const char* kNames[3] = {"RADIOSITY-like", "RAYTRACE-like", "VOLREND-like"};

}  // namespace

int main(int argc, char** argv) {
  const int cores = static_cast<int>(flag_int(argc, argv, "cores", 32));
  const int64_t scale = flag_int(argc, argv, "scale", 1000);
  const bool validate = flag_set(argc, argv, "validate");
  const char* config_list = flag_str(argc, argv, "config", nullptr);
  const bool fibers = flag_set(argc, argv, "fibers");

  std::printf(
      "== Fig. 8: execution time breakdown, no-CC vs software cache "
      "coherency (%d cores) ==\n\n",
      cores);

  util::Table table;
  table.add_row({"app", "config", "exec time", "busy", "I-stall", "priv rd",
                 "shared rd", "sync", "write", "flush", "util"});
  JsonReport json("fig8_swcc");
  json.add("cores", cores);
  double improvements = 0;
  double flush_worst = 0;
  for (int which = 0; which < 3; ++which) {
    Breakdown nocc, swcc;
    uint64_t checksum_nocc = 0, checksum_swcc = 0;
    for (int cfg = 0; cfg < 2; ++cfg) {
      const Target target = cfg == 0 ? Target::kNoCC : Target::kSWCC;
      auto app = make_app(which, scale);
      const auto r = run_app(*app, base_opts(target, cores, validate, fibers));
      if (validate && !r.validated_ok) {
        std::printf("!! %s on %s violated the model\n", kNames[which],
                    rt::to_string(target));
        return 1;
      }
      (cfg == 0 ? nocc : swcc) = Breakdown::from(r.stats);
      (cfg == 0 ? checksum_nocc : checksum_swcc) = r.checksum;
    }
    if (checksum_nocc != checksum_swcc) {
      std::printf("!! checksum mismatch between configurations\n");
      return 1;
    }
    const double base = static_cast<double>(nocc.total);
    for (int cfg = 0; cfg < 2; ++cfg) {
      const Breakdown& b = cfg == 0 ? nocc : swcc;
      table.add_row({kNames[which], cfg == 0 ? "no CC" : "SWCC",
                     pc(static_cast<double>(b.total), base),
                     pc(static_cast<double>(b.busy), base),
                     pc(static_cast<double>(b.ifetch), base),
                     pc(static_cast<double>(b.priv_read), base),
                     pc(static_cast<double>(b.shared_read), base),
                     pc(static_cast<double>(b.sync), base),
                     pc(static_cast<double>(b.write), base),
                     pc(static_cast<double>(b.flush), base),
                     pc(static_cast<double>(b.busy),
                        static_cast<double>(b.total))});
    }
    const double improvement =
        100.0 * (1.0 - static_cast<double>(swcc.total) / base);
    improvements += improvement;
    const double flush_pct = 100.0 * static_cast<double>(swcc.flush) /
                             static_cast<double>(swcc.total);
    flush_worst = std::max(flush_worst, flush_pct);
    std::printf("%s: SWCC improves execution time by %.1f%%; "
                "flush overhead %.2f%% of run time\n",
                kNames[which], improvement, flush_pct);
    const char* kSlugs[3] = {"radiosity", "raytrace", "volrend"};
    json.add(std::string(kSlugs[which]) + "_nocc_cycles", nocc.total);
    json.add(std::string(kSlugs[which]) + "_swcc_cycles", swcc.total);
    json.add(std::string(kSlugs[which]) + "_improvement_pct", improvement);
    json.add(std::string(kSlugs[which]) + "_flush_pct", flush_pct);
  }
  std::printf("\naverage SWCC improvement: %.1f%%  (paper: 22%%)\n",
              improvements / 3.0);
  std::printf("worst flush overhead: %.2f%%  (paper: <= 0.66%%)\n\n",
              flush_worst);
  std::printf("%s\n", table.render().c_str());
  std::printf("columns are %% of the app's no-CC aggregate cycles; "
              "'util' = busy/total of that run.\n");
  std::printf("'sync' holds lock/barrier stalls and wait backoff, which the "
              "paper folds into its shared-read bar.\n");
  json.add("avg_improvement_pct", improvements / 3.0);
  json.add("worst_flush_pct", flush_worst);

  if (config_list != nullptr) {
    // Scaled sweep: RADIOSITY-like (the barrier-heavy kernel whose release
    // fan-out exercises the mesh links) per described machine, no-CC vs
    // SWCC, plus the contention totals the mesh NoC model accounts.
    std::printf("\n== scaled sweep: RADIOSITY-like per machine config ==\n\n");
    util::Table st;
    st.add_row({"config", "cores", "no-CC cycles", "SWCC cycles", "improve",
                "link-stall cyc", "port-wait cyc"});
    for (const std::string& path : split_csv(config_list)) {
      sim::MachineConfig mc;
      try {
        mc = sim::MachineConfig::from_file(path);
      } catch (const util::CheckFailure& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
      const std::string prefix = "c" + std::to_string(mc.num_cores) + "_";
      uint64_t cycles[2] = {0, 0};
      uint64_t checksums[2] = {0, 0};
      AppRunResult swcc_run;
      for (int cfg = 0; cfg < 2; ++cfg) {
        const Target target = cfg == 0 ? Target::kNoCC : Target::kSWCC;
        auto app = make_app(0, scale);
        const auto r = run_app(*app, config_opts(target, mc, fibers));
        cycles[cfg] = Breakdown::from(r.stats).total;
        checksums[cfg] = r.checksum;
        if (cfg == 1) swcc_run = r;
      }
      if (checksums[0] != checksums[1]) {
        std::printf("!! checksum mismatch between configurations (%s)\n",
                    path.c_str());
        return 1;
      }
      const double improvement =
          100.0 * (1.0 - static_cast<double>(cycles[1]) /
                             static_cast<double>(cycles[0]));
      const obs::MetricsRegistry& reg = swcc_run.metrics;
      const uint64_t link_stall = reg.counter("noc.link_stall_cycles");
      const uint64_t port_wait = reg.counter("port.wait_cycles");
      st.add_row({path, std::to_string(mc.num_cores), fmt_u64(cycles[0]),
                  fmt_u64(cycles[1]), pc(improvement, 100.0),
                  fmt_u64(link_stall), fmt_u64(port_wait)});
      json.add(prefix + "radiosity_nocc_cycles", cycles[0]);
      json.add(prefix + "radiosity_swcc_cycles", cycles[1]);
      json.add(prefix + "improvement_pct", improvement);
      json.add(prefix + "noc_link_stall_cycles", link_stall);
      json.add(prefix + "noc_stalled_packets",
               reg.counter("noc.stalled_packets"));
      json.add(prefix + "port_wait_cycles", port_wait);
      if (const obs::Histogram* h = reg.histogram("port.sdram.wait")) {
        json.add(prefix + "port_queue_p50", h->quantile(0.50));
        json.add(prefix + "port_queue_p99", h->quantile(0.99));
      }
    }
    std::printf("%s\n", st.render().c_str());
  }
  if (!json.maybe_write(argc, argv)) return 1;
  return 0;
}
