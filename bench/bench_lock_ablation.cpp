// Substrate ablation: the asymmetric distributed lock (ref. [15]
// substitution) against the naive remote test-and-set spin lock.
//
// The property the PMC back-ends rely on: waiters spin in their own local
// memory, so contention does not hammer the shared atomic unit, and a
// handoff costs one NoC packet.
//
// Flags: --cores=N (default 16), --rounds=N (default 40).
// --config=a.cfg,b.cfg runs the heavy-contention scenario once per machine
// description (MachineConfig::from_file) and reports per-core-count keys
// plus the NoC/port contention metrics those configs enable; --fibers runs
// each machine's cores as fibers on one host thread (needed to make the
// 256-core sweep tractable).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/metrics.h"
#include "sim/machine.h"
#include "sim/scheduler.h"
#include "sync/locks.h"
#include "util/check.h"
#include "util/table.h"

namespace {

using namespace pmc;
using namespace pmc::bench;

struct LockRun {
  uint64_t makespan = 0;
  uint64_t atomics = 0;
  uint64_t noc_packets = 0;
  uint64_t acquire_cycles = 0;  // mean cycles per acquire+release round
  uint64_t link_stall_cycles = 0;
  uint64_t stalled_packets = 0;
  uint64_t port_wait_cycles = 0;
  double port_queue_p50 = 0;
  double port_queue_p99 = 0;
};

LockRun run_locks(bool distributed, const sim::MachineConfig& mc, int rounds,
                  uint32_t cs_len, uint32_t gap, bool fibers) {
  sim::Machine m(mc);
  if (fibers && sim::Scheduler::fibers_supported()) m.enable_snapshots();
  std::unique_ptr<sync::LockManager> locks;
  if (distributed) {
    locks = std::make_unique<sync::DistLockManager>(m, sim::kSdramBase,
                                                    64 * 1024, 0, 8 * 1024);
  } else {
    locks = std::make_unique<sync::SpinLockManager>(m, sim::kSdramBase,
                                                    64 * 1024);
  }
  const int l = locks->create();
  m.run([&](sim::Core& c) {
    for (int i = 0; i < rounds; ++i) {
      locks->acquire(c, l);
      c.compute(cs_len);
      locks->release(c, l);
      c.compute(gap);
    }
  });
  LockRun r;
  for (int c = 0; c < mc.num_cores; ++c) {
    r.makespan = std::max(r.makespan, m.stats(c).cycles_total);
  }
  r.atomics = m.stats_sum().atomics;
  r.noc_packets = m.noc().packets_sent();
  r.acquire_cycles = r.makespan / static_cast<uint64_t>(rounds);
  obs::MetricsRegistry reg;
  m.export_metrics(reg);
  r.link_stall_cycles = reg.counter("noc.link_stall_cycles");
  r.stalled_packets = reg.counter("noc.stalled_packets");
  r.port_wait_cycles = reg.counter("port.wait_cycles");
  if (const obs::Histogram* h = reg.histogram("port.sdram.wait")) {
    r.port_queue_p50 = h->quantile(0.50);
    r.port_queue_p99 = h->quantile(0.99);
  }
  return r;
}

sim::MachineConfig preset_config(int cores) {
  sim::MachineConfig cfg = sim::MachineConfig::ml605(cores);
  cfg.lm_bytes = 32 * 1024;
  cfg.sdram_bytes = 1024 * 1024;
  cfg.max_cycles = UINT64_C(10'000'000'000);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const int cores = static_cast<int>(flag_int(argc, argv, "cores", 16));
  const int rounds = static_cast<int>(flag_int(argc, argv, "rounds", 40));
  const char* config_list = flag_str(argc, argv, "config", nullptr);
  const bool fibers = flag_set(argc, argv, "fibers");
  std::printf("== ablation: distributed lock vs remote test-and-set "
              "(%d cores, %d rounds each) ==\n\n",
              cores, rounds);

  JsonReport json("lock_ablation");
  json.add("cores", cores);
  json.add("rounds", rounds);

  util::Table t;
  t.add_row({"scenario", "lock", "makespan", "atomic ops", "NoC packets"});
  struct Scenario {
    const char* name;
    const char* slug;
    int ncores;
    uint32_t cs, gap;
  };
  const Scenario scenarios[] = {
      {"uncontended (1 core)", "uncontended", 1, 20, 20},
      {"light contention", "light", cores, 20, 400},
      {"heavy contention", "heavy", cores, 200, 20},
  };
  for (const auto& s : scenarios) {
    for (bool dist : {false, true}) {
      const LockRun r = run_locks(dist, preset_config(s.ncores), rounds, s.cs,
                                  s.gap, fibers);
      t.add_row({s.name, dist ? "distributed" : "spin-TAS",
                 fmt_u64(r.makespan), fmt_u64(r.atomics),
                 fmt_u64(r.noc_packets)});
      const std::string key =
          std::string(s.slug) + (dist ? "_dist" : "_spin");
      json.add(key + "_makespan", r.makespan);
      json.add(key + "_atomics", r.atomics);
      json.add(key + "_noc_packets", r.noc_packets);
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("expected shape: under contention the distributed lock's "
              "atomic-op count stays at ~2 per round\nwhile the spin lock's "
              "explodes; its handoffs appear as NoC packets instead.\n");

  if (config_list != nullptr) {
    // Scaled sweep: the heavy-contention scenario once per described
    // machine, spin and distributed, with the contention metrics the mesh
    // NoC model accounts (zero under the flat model).
    std::printf("\n== scaled sweep (heavy contention, %d rounds) ==\n\n",
                rounds);
    util::Table st;
    st.add_row({"config", "cores", "lock", "makespan", "link-stall cyc",
                "stalled pkts", "port-wait cyc", "port p50/p99"});
    for (const std::string& path : split_csv(config_list)) {
      sim::MachineConfig mc;
      try {
        mc = sim::MachineConfig::from_file(path);
      } catch (const util::CheckFailure& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
      const std::string prefix = "c" + std::to_string(mc.num_cores) + "_";
      for (bool dist : {false, true}) {
        const LockRun r = run_locks(dist, mc, rounds, 200, 20, fibers);
        st.add_row({path, std::to_string(mc.num_cores),
                    dist ? "distributed" : "spin-TAS", fmt_u64(r.makespan),
                    fmt_u64(r.link_stall_cycles), fmt_u64(r.stalled_packets),
                    fmt_u64(r.port_wait_cycles),
                    std::to_string(static_cast<uint64_t>(r.port_queue_p50)) +
                        "/" +
                        std::to_string(static_cast<uint64_t>(r.port_queue_p99))});
        const std::string key = prefix + (dist ? "dist" : "spin");
        json.add(key + "_makespan", r.makespan);
        json.add(key + "_atomics", r.atomics);
        json.add(key + "_noc_packets", r.noc_packets);
        if (dist) {
          // Machine-level contention totals are lock-agnostic; report them
          // once per config, from the distributed run's machine.
          json.add(prefix + "noc_link_stall_cycles", r.link_stall_cycles);
          json.add(prefix + "noc_stalled_packets", r.stalled_packets);
          json.add(prefix + "port_wait_cycles", r.port_wait_cycles);
          json.add(prefix + "port_queue_p50", r.port_queue_p50);
          json.add(prefix + "port_queue_p99", r.port_queue_p99);
        }
      }
    }
    std::printf("%s\n", st.render().c_str());
  }
  if (!json.maybe_write(argc, argv)) return 1;
  return 0;
}
