// Substrate ablation: the asymmetric distributed lock (ref. [15]
// substitution) against the naive remote test-and-set spin lock.
//
// The property the PMC back-ends rely on: waiters spin in their own local
// memory, so contention does not hammer the shared atomic unit, and a
// handoff costs one NoC packet.
//
// Flags: --cores=N (default 16), --rounds=N (default 40).
#include <cstdio>

#include "bench/bench_common.h"
#include "sim/machine.h"
#include "sync/locks.h"
#include "util/table.h"

namespace {

using namespace pmc;
using namespace pmc::bench;

struct LockRun {
  uint64_t makespan = 0;
  uint64_t atomics = 0;
  uint64_t noc_packets = 0;
  uint64_t acquire_cycles = 0;  // mean cycles per acquire+release round
};

LockRun run_locks(bool distributed, int cores, int rounds, uint32_t cs_len,
                  uint32_t gap) {
  sim::MachineConfig cfg = sim::MachineConfig::ml605(cores);
  cfg.lm_bytes = 32 * 1024;
  cfg.sdram_bytes = 1024 * 1024;
  cfg.max_cycles = UINT64_C(10'000'000'000);
  sim::Machine m(cfg);
  std::unique_ptr<sync::LockManager> locks;
  if (distributed) {
    locks = std::make_unique<sync::DistLockManager>(m, sim::kSdramBase,
                                                    64 * 1024, 0, 8 * 1024);
  } else {
    locks = std::make_unique<sync::SpinLockManager>(m, sim::kSdramBase,
                                                    64 * 1024);
  }
  const int l = locks->create();
  m.run([&](sim::Core& c) {
    for (int i = 0; i < rounds; ++i) {
      locks->acquire(c, l);
      c.compute(cs_len);
      locks->release(c, l);
      c.compute(gap);
    }
  });
  LockRun r;
  for (int c = 0; c < cores; ++c) {
    r.makespan = std::max(r.makespan, m.stats(c).cycles_total);
  }
  r.atomics = m.stats_sum().atomics;
  r.noc_packets = m.noc().packets_sent();
  r.acquire_cycles = r.makespan / static_cast<uint64_t>(rounds);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const int cores = static_cast<int>(flag_int(argc, argv, "cores", 16));
  const int rounds = static_cast<int>(flag_int(argc, argv, "rounds", 40));
  std::printf("== ablation: distributed lock vs remote test-and-set "
              "(%d cores, %d rounds each) ==\n\n",
              cores, rounds);

  JsonReport json("lock_ablation");
  json.add("cores", cores);
  json.add("rounds", rounds);

  util::Table t;
  t.add_row({"scenario", "lock", "makespan", "atomic ops", "NoC packets"});
  struct Scenario {
    const char* name;
    const char* slug;
    int ncores;
    uint32_t cs, gap;
  };
  const Scenario scenarios[] = {
      {"uncontended (1 core)", "uncontended", 1, 20, 20},
      {"light contention", "light", cores, 20, 400},
      {"heavy contention", "heavy", cores, 200, 20},
  };
  for (const auto& s : scenarios) {
    for (bool dist : {false, true}) {
      const LockRun r = run_locks(dist, s.ncores, rounds, s.cs, s.gap);
      t.add_row({s.name, dist ? "distributed" : "spin-TAS",
                 fmt_u64(r.makespan), fmt_u64(r.atomics),
                 fmt_u64(r.noc_packets)});
      const std::string key =
          std::string(s.slug) + (dist ? "_dist" : "_spin");
      json.add(key + "_makespan", r.makespan);
      json.add(key + "_atomics", r.atomics);
      json.add(key + "_noc_packets", r.noc_packets);
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("expected shape: under contention the distributed lock's "
              "atomic-op count stays at ~2 per round\nwhile the spin lock's "
              "explodes; its handoffs appear as NoC packets instead.\n");
  if (!json.maybe_write(argc, argv)) return 1;
  return 0;
}
