// Microbenchmarks of the memory-model engine (google-benchmark).
//
// Quantifies the closure-preserving edge reduction of Execution against the
// literal Table I implementation (NaiveExecution), reachability queries, and
// litmus exploration cost.
#include <benchmark/benchmark.h>

#include "model/execution.h"
#include "model/litmus_library.h"
#include "model/naive.h"
#include "util/rng.h"

namespace {

using namespace pmc;
using namespace pmc::model;

/// Issues a fixed random well-formed program into any execution type.
template <typename E>
void drive(E& e, int procs, int locs, int steps, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<int> holder(static_cast<size_t>(locs), -1);
  for (int i = 0; i < steps; ++i) {
    const ProcId p = static_cast<ProcId>(rng.next_below(procs));
    const LocId v = static_cast<LocId>(rng.next_below(locs));
    switch (rng.next_below(6)) {
      case 0:
        e.read(p, v, 0);
        break;
      case 1:
      case 2:
        e.write(p, v, static_cast<uint64_t>(i));
        break;
      case 3:
        if (holder[v] == -1) {
          e.acquire(p, v);
          holder[v] = p;
        }
        break;
      case 4:
        if (holder[v] == p) {
          e.release(p, v);
          holder[v] = -1;
        }
        break;
      case 5:
        e.fence(p);
        break;
    }
  }
}

void BM_ExecutionIssueReduced(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Execution e(4, 8);
    drive(e, 4, 8, steps, 42);
    benchmark::DoNotOptimize(e.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_ExecutionIssueReduced)->Arg(64)->Arg(256)->Arg(1024);

void BM_ExecutionIssueNaive(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    NaiveExecution e(4, 8);
    drive(e, 4, 8, steps, 42);
    benchmark::DoNotOptimize(e.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * steps);
}
BENCHMARK(BM_ExecutionIssueNaive)->Arg(64)->Arg(256);

void BM_HbGlobalQuery(benchmark::State& state) {
  Execution e(4, 8);
  drive(e, 4, 8, 512, 7);
  const OpId n = static_cast<OpId>(e.num_ops());
  uint64_t i = 0;
  for (auto _ : state) {
    const OpId a = static_cast<OpId>(i % (n / 2));
    const OpId b = static_cast<OpId>(n / 2 + i % (n / 2));
    benchmark::DoNotOptimize(e.hb_global(a, b));
    ++i;
  }
}
BENCHMARK(BM_HbGlobalQuery);

void BM_LegalSourcesQuery(benchmark::State& state) {
  Execution e(4, 8);
  drive(e, 4, 8, 512, 7);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        e.legal_sources_now(static_cast<ProcId>(i % 4),
                            static_cast<LocId>(i % 8)));
    ++i;
  }
}
BENCHMARK(BM_LegalSourcesQuery);

void BM_LitmusExploreFig5(benchmark::State& state) {
  const auto test = litmus::fig5_mp_annotated();
  for (auto _ : state) {
    benchmark::DoNotOptimize(explore(test));
  }
}
BENCHMARK(BM_LitmusExploreFig5);

void BM_LitmusExploreWeakIssue(benchmark::State& state) {
  const auto test = litmus::fig5_mp_no_reader_fence();
  ExploreOptions opts;
  opts.mode = IssueMode::kWeakIssue;
  opts.weak_window = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(explore(test, opts));
  }
}
BENCHMARK(BM_LitmusExploreWeakIssue);

}  // namespace

BENCHMARK_MAIN();
